package crl

import (
	"fmt"
	"sort"
	"strings"

	"fugu/internal/spans"
)

// This file implements glaze.Diagnostic: each CRL node contributes its
// protocol state and waits-for edges to the machine's liveness reports.
//
// Waits-for vertices (names are global, so edges from different nodes
// connect):
//
//	acq:n<node>:r<id>  a thread on <node> blocked acquiring a section
//	txn:r<id>          the home directory transaction in flight for <id>
//	sec:r<id>@<node>   an open (or granted-but-unopened) section on <node>
//
// A blocked acquire always points at the region's transaction vertex; if
// no node reports that transaction in flight (the home directory is idle),
// the wait dangles — the request was lost, not deadlocked, which is its
// own diagnosis.

func (k acqKind) String() string {
	switch k {
	case acqRead:
		return "read"
	case acqWrite:
		return "write"
	default:
		return "none"
	}
}

// sortedRegionIDs returns the node's mapped region ids in order.
func (n *Node) sortedRegionIDs() []RegionID {
	ids := make([]RegionID, 0, len(n.regions))
	for id := range n.regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// DiagSections renders this node's region copies and home directory
// entries, flagging blocked acquires explicitly.
func (n *Node) DiagSections(at uint64) []spans.Section {
	var b strings.Builder
	for _, id := range n.sortedRegionIDs() {
		r := n.regions[id]
		fmt.Fprintf(&b, "region %d: st=%d readers=%d writing=%v acq=%s invPending=%v flushPending=%v\n",
			id, r.st, r.readers, r.writing, r.acq, r.invPending, r.flushPending)
		if r.acq != acqNone && !r.grantInHand() {
			fmt.Fprintf(&b, "  BLOCKED: %s acquire on region %d awaiting grant from home %d (wait=%d gen=%d)\n",
				r.acq, id, r.home, r.wait.Value(), r.gen)
		}
		if d := n.dir[id]; d != nil {
			sharers := []int{}
			for node, has := range d.sharers {
				if has {
					sharers = append(sharers, node)
				}
			}
			fmt.Fprintf(&b, "  home dir: mode=%d owner=%d sharers=%v busy=%v homeWait=%v pendingAcks=%d cur={op=%d from=%d} queue=%v\n",
				d.mode, d.owner, sharers, d.busy, d.homeWait, d.pendingAcks, d.cur.op, d.cur.from, d.queue)
		}
	}
	return []spans.Section{{Title: fmt.Sprintf("crl node %d", n.self), Body: b.String()}}
}

// WaitEdges reports this node's waits-for edges. Section-holder edges
// assume the section and the blocked acquire belong to the same thread,
// which holds for CRL's one-application-thread-per-node usage.
func (n *Node) WaitEdges() []spans.WaitEdge {
	var edges []spans.WaitEdge
	ids := n.sortedRegionIDs()
	var blockedAcq []RegionID
	for _, id := range ids {
		r := n.regions[id]
		if r.acq != acqNone && !r.grantInHand() {
			blockedAcq = append(blockedAcq, id)
			edges = append(edges, spans.WaitEdge{
				From: fmt.Sprintf("acq:n%d:r%d", n.self, id),
				To:   fmt.Sprintf("txn:r%d", id),
				Note: fmt.Sprintf("%s acquire awaiting grant from home %d", r.acq, r.home),
			})
		}
		// Deferred coherence actions at a caching node: the in-flight
		// transaction waits on this node's open section.
		if r.invPending {
			edges = append(edges, spans.WaitEdge{
				From: fmt.Sprintf("txn:r%d", id),
				To:   fmt.Sprintf("sec:r%d@%d", id, n.self),
				Note: "invalidation deferred by open section",
			})
		}
		if r.flushPending {
			edges = append(edges, spans.WaitEdge{
				From: fmt.Sprintf("txn:r%d", id),
				To:   fmt.Sprintf("sec:r%d@%d", id, n.self),
				Note: "flush deferred by open section",
			})
		}
		// Home-side: what the in-flight transaction waits for.
		d := n.dir[id]
		if d == nil || !d.busy {
			continue
		}
		txn := fmt.Sprintf("txn:r%d", id)
		edges = append(edges, spans.WaitEdge{
			From: fmt.Sprintf("acq:n%d:r%d", d.cur.from, id),
			To:   txn,
			Note: "current transaction",
		})
		for _, q := range d.queue {
			edges = append(edges, spans.WaitEdge{
				From: fmt.Sprintf("acq:n%d:r%d", q.from, id),
				To:   txn,
				Note: "queued behind current transaction",
			})
		}
		switch {
		case d.homeWait:
			edges = append(edges, spans.WaitEdge{
				From: txn,
				To:   fmt.Sprintf("sec:r%d@%d", id, n.self),
				Note: "deferred until the home's section closes",
			})
		case d.pendingAcks > 0:
			for node, has := range d.sharers {
				if has && node != n.self && node != d.cur.from {
					edges = append(edges, spans.WaitEdge{
						From: txn,
						To:   fmt.Sprintf("sec:r%d@%d", id, node),
						Note: "awaiting invalidation ack",
					})
				}
			}
		case d.mode == modeExclusive && d.owner != -1 && d.owner != n.self:
			edges = append(edges, spans.WaitEdge{
				From: txn,
				To:   fmt.Sprintf("sec:r%d@%d", id, d.owner),
				Note: "awaiting flush of the exclusive copy",
			})
		}
	}
	// A section held open on this node while one of its threads is blocked
	// acquiring another region chains the waits.
	for _, held := range ids {
		r := n.regions[held]
		if r.readers == 0 && !r.writing && !r.grantInHand() {
			continue
		}
		for _, want := range blockedAcq {
			if want == held {
				continue
			}
			edges = append(edges, spans.WaitEdge{
				From: fmt.Sprintf("sec:r%d@%d", held, n.self),
				To:   fmt.Sprintf("acq:n%d:r%d", n.self, want),
				Note: "section holder blocked acquiring",
			})
		}
	}
	return edges
}
